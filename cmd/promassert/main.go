// Command promassert validates a Prometheus text exposition and
// asserts sample values — the CI-side consumer of the /metrics
// endpoints and -metrics artifacts this repo's binaries expose. It
// parses the input with the same strict validator the golden tests
// use, so a scrape that drifts from text format v0.0.4 fails here, not
// in a dashboard three weeks later.
//
// Usage:
//
//	promassert [-in scrape.prom] [-min name:floor]...
//
// -in names the exposition file (default stdin). Each -min (repeatable)
// requires a sample whose name matches (label sets are ignored; the
// first sample of the family is compared) with a value ≥ floor.
//
// Exit status: 0 when the exposition parses and every -min assertion
// holds, 1 when parsing fails or an assertion misses, 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/obs"
)

const (
	exitOK     = 0
	exitFailed = 1
	exitUsage  = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool behind an injectable (args, stdout, stderr) so
// the exit-status contract is unit-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(status int, format string, a ...any) int {
		fmt.Fprintf(stderr, "promassert: "+format+"\n", a...)
		return status
	}
	fs := flag.NewFlagSet("promassert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "exposition file to validate (default stdin)")
	var mins minList
	fs.Var(&mins, "min", "name:floor — require a sample of this family with value ≥ floor (repeatable)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return fail(exitUsage, "unexpected arguments %q; promassert is configured by flags only", fs.Args())
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fail(exitUsage, "%v", err)
		}
		defer f.Close()
		r = f
	}
	samples, err := obs.ParseProm(r)
	if err != nil {
		return fail(exitFailed, "exposition does not parse: %v", err)
	}
	fmt.Fprintf(stdout, "parsed %d samples\n", len(samples))

	misses := 0
	for _, m := range mins {
		name, floorStr, ok := strings.Cut(m, ":")
		if !ok || name == "" {
			return fail(exitUsage, "-min wants name:floor, got %q", m)
		}
		floor, err := strconv.ParseFloat(floorStr, 64)
		if err != nil {
			return fail(exitUsage, "-min %s: bad floor: %v", m, err)
		}
		s, found := obs.FindSample(samples, name)
		if !found {
			misses++
			fmt.Fprintf(stderr, "promassert: no sample of family %q in the exposition\n", name)
			continue
		}
		verdict := "ok"
		if s.Value < floor {
			misses++
			verdict = "FAIL"
			fmt.Fprintf(stderr, "promassert: %s = %v, below the %v floor\n", name, s.Value, floor)
		}
		fmt.Fprintf(stdout, "%s = %v (floor %v) %s\n", name, s.Value, floor, verdict)
	}
	if misses > 0 {
		return exitFailed
	}
	return exitOK
}

// minList is the repeatable name:floor flag value behind -min.
type minList []string

func (m *minList) String() string     { return strings.Join(*m, ",") }
func (m *minList) Set(v string) error { *m = append(*m, v); return nil }
