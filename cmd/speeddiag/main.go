// Command speeddiag renders the speed diagram (Fig. 3) of a controlled
// run as an ASCII chart: the trajectory of (actual time, virtual time)
// through one frame, against the 45° ideal line, plus the per-level ideal
// speeds.
//
// Usage:
//
//	speeddiag [-manager relaxed] [-seed 1] [-refq 4] [-frame 0]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/speed"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("speeddiag: ")
	manager := flag.String("manager", "relaxed", "numeric, symbolic or relaxed")
	seed := flag.Uint64("seed", 1, "content seed")
	refQ := flag.Int("refq", 4, "reference quality level for virtual time")
	frameIdx := flag.Int("frame", 0, "frame (cycle) to plot")
	flag.Parse()

	s := experiment.Paper(*seed)
	var m core.Manager
	switch *manager {
	case "numeric":
		m = s.Numeric()
	case "symbolic":
		m = s.Symbolic()
	case "relaxed":
		m = s.Relaxed()
	default:
		log.Fatalf("unknown manager %q", *manager)
	}
	d, err := speed.NewFinalDiagram(s.Sys)
	if err != nil {
		log.Fatal(err)
	}
	tr := s.RunCycles(m, *frameIdx+1)
	ref := core.Level(*refQ).Clamp(s.Sys.NumLevels())

	traj := plot.Series{Name: "trajectory (" + m.Name() + ")"}
	for _, r := range tr.Records {
		if r.Cycle != *frameIdx || r.Index%20 != 0 {
			continue
		}
		traj.X = append(traj.X, r.RelStart(s.Period).Millis())
		traj.Y = append(traj.Y, d.VirtualTime(r.Index, ref)/float64(core.Millisecond))
	}
	ideal := plot.Series{Name: "45° optimum"}
	D := d.Deadline().Millis()
	for f := 0.0; f <= 1.0; f += 0.02 {
		ideal.X = append(ideal.X, f*D)
		ideal.Y = append(ideal.Y, f*D)
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("Speed diagram, frame %d (virtual time at %v)", *frameIdx, ref),
		XLabel: "actual time (ms)",
		YLabel: "virtual time (ms)",
		Series: []plot.Series{ideal, traj},
	}
	fmt.Println(chart.ASCII(78, 24))

	fmt.Println("ideal speeds v_idl(q) = D / Cav(a_1..a_k, q):")
	for q := core.Level(0); q <= s.Sys.QMax(); q++ {
		fmt.Printf("  %v: %.3f\n", q, d.IdealSpeed(q))
	}
}
