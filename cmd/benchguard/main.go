// Command benchguard compares a fresh BENCH_fleet.json against the
// committed BENCH_baseline.json and fails when any matching row
// regressed in ns/action beyond the tolerance — the CI tripwire that
// keeps hot-path regressions from landing silently.
//
// Rows match on (name, streams, workers, cycles, batch_cycles,
// num_cpu, gomaxprocs): a benchmark row is only comparable against a
// baseline produced by the same configuration on the same host shape. Rows
// without a match — a new benchmark, or CI running on different
// hardware than the committed baseline — are reported and skipped.
//
// Cross-host runs still get a tripwire through -self: a pair of row
// names compared *within the fresh artifact* — produced on one host in
// one run, so the ratio is meaningful wherever CI executes. The shipped
// CI uses it to assert the continuous open engine never falls behind
// the serial wave spec it replaced.
//
// Usage:
//
//	benchguard [-baseline BENCH_baseline.json] [-fresh BENCH_fleet.json]
//	           [-max-regress 0.25] [-self row:reference] [-max-self-ratio 1.25]
//
// -max-regress is the tolerated fractional slowdown (0.25 = fail beyond
// +25% ns/action). Improvements and matches within tolerance print as a
// table either way, so the CI log doubles as a perf trajectory record.
//
// Exit status:
//
//	0  every matching row within tolerance (and -self within bound)
//	1  a matching row regressed, or the -self ratio exceeded its bound
//	2  usage or artifact-loading error
//	3  zero rows match the baseline host shape — nothing was compared,
//	   so a green run proves nothing; CI distinguishes this from a pass
//	   instead of treating a foreign-host no-op as a guarantee
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Exit statuses; see the package comment.
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitNoMatch    = 3
)

// row mirrors the fleet bench harness's artifact schema; unknown fields
// are ignored so the guard survives additive schema growth.
type row struct {
	Name        string  `json:"name"`
	Streams     int     `json:"streams"`
	Workers     int     `json:"workers"`
	BatchCycles int     `json:"batch_cycles"`
	Cycles      int     `json:"cycles"`
	NumCPU      int     `json:"num_cpu"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	NsPerAction float64 `json:"ns_per_action"`
}

// key is the row-matching identity: the workload configuration plus the
// host shape that produced the number.
type key struct {
	name                       string
	streams, workers, batch    int
	cycles, numCPU, gomaxprocs int
}

func (r row) key() key {
	return key{r.Name, r.Streams, r.Workers, r.BatchCycles, r.Cycles, r.NumCPU, r.Gomaxprocs}
}

func load(path string) ([]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole guard behind an injectable (args, stdout, stderr) so
// the exit-status contract is unit-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "benchguard: "+format+"\n", a...)
		return exitUsage
	}
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	fresh := fs.String("fresh", "BENCH_fleet.json", "freshly produced bench artifact")
	maxRegress := fs.Float64("max-regress", 0.25, "tolerated fractional ns/action slowdown before failing")
	self := fs.String("self", "", "row:reference pair compared within the fresh artifact (host-independent tripwire)")
	maxSelfRatio := fs.Float64("max-self-ratio", 1.25, "tolerated ns/action ratio of the -self row over its reference")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments %q; benchguard is configured by flags only", fs.Args())
	}
	if *maxRegress < 0 || math.IsNaN(*maxRegress) || math.IsInf(*maxRegress, 0) {
		return fail("-max-regress must be a non-negative fraction, got %v", *maxRegress)
	}
	if *maxSelfRatio <= 0 || math.IsNaN(*maxSelfRatio) || math.IsInf(*maxSelfRatio, 0) {
		return fail("-max-self-ratio must be a positive ratio, got %v", *maxSelfRatio)
	}

	base, err := load(*baseline)
	if err != nil {
		return fail("%v", err)
	}
	cur, err := load(*fresh)
	if err != nil {
		return fail("%v", err)
	}
	byKey := map[key]row{}
	for _, r := range base {
		byKey[r.key()] = r
	}

	matched, regressed := 0, 0
	fmt.Fprintf(stdout, "%-34s %12s %12s %9s\n", "row", "baseline", "fresh", "delta")
	for _, r := range cur {
		b, ok := byKey[r.key()]
		if !ok {
			fmt.Fprintf(stdout, "%-34s %12s %12.2f %9s\n", r.Name, "—", r.NsPerAction, "skip")
			continue
		}
		if b.NsPerAction <= 0 {
			fmt.Fprintf(stdout, "%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, "skip")
			continue
		}
		matched++
		delta := r.NsPerAction/b.NsPerAction - 1
		verdict := fmt.Sprintf("%+.1f%%", 100*delta)
		if delta > *maxRegress {
			regressed++
			verdict += " FAIL"
		}
		fmt.Fprintf(stdout, "%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, verdict)
	}

	status := exitOK
	switch {
	case regressed > 0:
		fmt.Fprintf(stderr, "benchguard: %d of %d matching rows regressed beyond %+.0f%% ns/action\n",
			regressed, matched, 100**maxRegress)
		status = exitRegression
	case matched == 0:
		fmt.Fprintf(stderr, "benchguard: no rows match the baseline host shape (%s was produced on different hardware or a different workload set); nothing was compared\n",
			*baseline)
		status = exitNoMatch
	default:
		fmt.Fprintf(stdout, "%d matching rows within %+.0f%% of the baseline\n", matched, 100**maxRegress)
	}

	// The self-check runs even when host-shape matching found nothing —
	// that is exactly the situation it exists for. Its failures outrank
	// the no-match status.
	if *self != "" {
		rowName, refName, ok := strings.Cut(*self, ":")
		if !ok || rowName == "" || refName == "" {
			return fail("-self wants row:reference, got %q", *self)
		}
		r, ref := findRow(cur, rowName), findRow(cur, refName)
		if r == nil || ref == nil || ref.NsPerAction <= 0 {
			return fail("-self %s: the fresh artifact lacks the pair (have %q and %q?)", *self, rowName, refName)
		}
		ratio := r.NsPerAction / ref.NsPerAction
		fmt.Fprintf(stdout, "self-check: %s / %s = %.2f (bound %.2f)\n", rowName, refName, ratio, *maxSelfRatio)
		if ratio > *maxSelfRatio {
			fmt.Fprintf(stderr, "benchguard: %s is %.2fx %s, beyond the %.2fx bound\n", rowName, ratio, refName, *maxSelfRatio)
			return exitRegression
		}
	}
	return status
}

// findRow returns the first fresh row with the given name (the fresh
// artifact is one host and one run, so names are unique per batch).
func findRow(rows []row, name string) *row {
	for i := range rows {
		if rows[i].Name == name {
			return &rows[i]
		}
	}
	return nil
}
