// Command benchguard compares a fresh BENCH_fleet.json against the
// committed BENCH_baseline.json and fails (exit 1) when any matching
// row regressed in ns/action beyond the tolerance — the CI tripwire
// that keeps hot-path regressions from landing silently.
//
// Rows match on (name, streams, workers, cycles, batch_cycles,
// num_cpu, gomaxprocs): a benchmark row is only comparable against a
// baseline produced by the same configuration on the same host shape. Rows
// without a match — a new benchmark, or CI running on different
// hardware than the committed baseline — are reported and skipped, so
// the guard degrades to a no-op rather than flapping on foreign hosts.
//
// Cross-host runs still get a tripwire through -self: a pair of row
// names compared *within the fresh artifact* — produced on one host in
// one run, so the ratio is meaningful wherever CI executes. The shipped
// CI uses it to assert the continuous open engine never falls behind
// the serial wave spec it replaced.
//
// Usage:
//
//	benchguard [-baseline BENCH_baseline.json] [-fresh BENCH_fleet.json]
//	           [-max-regress 0.25] [-self row:reference] [-max-self-ratio 1.25]
//
// -max-regress is the tolerated fractional slowdown (0.25 = fail beyond
// +25% ns/action). Improvements and matches within tolerance print as a
// table either way, so the CI log doubles as a perf trajectory record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
)

// row mirrors the fleet bench harness's artifact schema; unknown fields
// are ignored so the guard survives additive schema growth.
type row struct {
	Name        string  `json:"name"`
	Streams     int     `json:"streams"`
	Workers     int     `json:"workers"`
	BatchCycles int     `json:"batch_cycles"`
	Cycles      int     `json:"cycles"`
	NumCPU      int     `json:"num_cpu"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	NsPerAction float64 `json:"ns_per_action"`
}

// key is the row-matching identity: the workload configuration plus the
// host shape that produced the number.
type key struct {
	name                       string
	streams, workers, batch    int
	cycles, numCPU, gomaxprocs int
}

func (r row) key() key {
	return key{r.Name, r.Streams, r.Workers, r.BatchCycles, r.Cycles, r.NumCPU, r.Gomaxprocs}
}

func load(path string) ([]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	fresh := flag.String("fresh", "BENCH_fleet.json", "freshly produced bench artifact")
	maxRegress := flag.Float64("max-regress", 0.25, "tolerated fractional ns/action slowdown before failing")
	self := flag.String("self", "", "row:reference pair compared within the fresh artifact (host-independent tripwire)")
	maxSelfRatio := flag.Float64("max-self-ratio", 1.25, "tolerated ns/action ratio of the -self row over its reference")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments %q; benchguard is configured by flags only", flag.Args())
	}
	if *maxRegress < 0 || math.IsNaN(*maxRegress) || math.IsInf(*maxRegress, 0) {
		log.Fatalf("-max-regress must be a non-negative fraction, got %v", *maxRegress)
	}
	if *maxSelfRatio <= 0 || math.IsNaN(*maxSelfRatio) || math.IsInf(*maxSelfRatio, 0) {
		log.Fatalf("-max-self-ratio must be a positive ratio, got %v", *maxSelfRatio)
	}

	base, err := load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*fresh)
	if err != nil {
		log.Fatal(err)
	}
	byKey := map[key]row{}
	for _, r := range base {
		byKey[r.key()] = r
	}

	matched, regressed := 0, 0
	fmt.Printf("%-34s %12s %12s %9s\n", "row", "baseline", "fresh", "delta")
	for _, r := range cur {
		b, ok := byKey[r.key()]
		if !ok {
			fmt.Printf("%-34s %12s %12.2f %9s\n", r.Name, "—", r.NsPerAction, "skip")
			continue
		}
		if b.NsPerAction <= 0 {
			fmt.Printf("%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, "skip")
			continue
		}
		matched++
		delta := r.NsPerAction/b.NsPerAction - 1
		verdict := fmt.Sprintf("%+.1f%%", 100*delta)
		if delta > *maxRegress {
			regressed++
			verdict += " FAIL"
		}
		fmt.Printf("%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, verdict)
	}
	switch {
	case regressed > 0:
		log.Fatalf("%d of %d matching rows regressed beyond %+.0f%% ns/action", regressed, matched, 100**maxRegress)
	case matched == 0:
		fmt.Printf("no rows match the baseline host shape; nothing to compare\n")
	default:
		fmt.Printf("%d matching rows within %+.0f%% of the baseline\n", matched, 100**maxRegress)
	}

	if *self != "" {
		rowName, refName, ok := strings.Cut(*self, ":")
		if !ok || rowName == "" || refName == "" {
			log.Fatalf("-self wants row:reference, got %q", *self)
		}
		r, ref := findRow(cur, rowName), findRow(cur, refName)
		if r == nil || ref == nil || ref.NsPerAction <= 0 {
			log.Fatalf("-self %s: the fresh artifact lacks the pair (have %q and %q?)", *self, rowName, refName)
		}
		ratio := r.NsPerAction / ref.NsPerAction
		fmt.Printf("self-check: %s / %s = %.2f (bound %.2f)\n", rowName, refName, ratio, *maxSelfRatio)
		if ratio > *maxSelfRatio {
			log.Fatalf("%s is %.2fx %s, beyond the %.2fx bound", rowName, ratio, refName, *maxSelfRatio)
		}
	}
}

// findRow returns the first fresh row with the given name (the fresh
// artifact is one host and one run, so names are unique per batch).
func findRow(rows []row, name string) *row {
	for i := range rows {
		if rows[i].Name == name {
			return &rows[i]
		}
	}
	return nil
}
