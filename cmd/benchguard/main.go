// Command benchguard compares a fresh BENCH_fleet.json against the
// committed BENCH_baseline.json and fails when any matching row
// regressed in ns/action beyond the tolerance — the CI tripwire that
// keeps hot-path regressions from landing silently.
//
// Rows match on (name, streams, workers, cycles, batch_cycles,
// num_cpu, gomaxprocs): a benchmark row is only comparable against a
// baseline produced by the same configuration on the same host shape. Rows
// without a match — a new benchmark, or CI running on different
// hardware than the committed baseline — are reported and skipped.
//
// Cross-host runs still get a tripwire through -self: a pair of row
// names compared *within the fresh artifact* — produced on one host in
// one run, so the ratio is meaningful wherever CI executes. The shipped
// CI uses it to assert the continuous open engine never falls behind
// the serial wave spec it replaced.
//
// Multi-core scaling gets its own within-artifact assertion through
// -speedup: a row:reference pair (repeatable) where the reference is
// the slow shape (say workers=1) and the row the parallel one (say
// workers=4); the guard requires reference ns/action ÷ row ns/action ≥
// -min-speedup. Like -self it compares inside the fresh artifact, so
// it holds on any host — but it is only meaningful where the hardware
// can parallelize at all, so pairs are skipped (not failed) when the
// fresh rows report fewer than -speedup-min-cpus CPUs. A shortfall is
// a distinct exit status: "the engine stopped scaling" is a different
// failure from "a row got slower" and CI may gate them differently.
//
// Usage:
//
// Observability overhead gets the same treatment through -overhead: a
// row:reference pair (repeatable) where the row is the metrics-enabled
// shape of a benchmark and the reference its disabled twin, compared
// within the fresh artifact. The guard fails when row ns/action exceeds
// reference × (1 + -max-overhead) — the contract that the allocation-
// free instrument layer stays effectively free on the hot path.
//
// Usage:
//
//	benchguard [-baseline BENCH_baseline.json] [-fresh BENCH_fleet.json]
//	           [-max-regress 0.25] [-self row:reference] [-max-self-ratio 1.25]
//	           [-speedup row:reference]... [-min-speedup 1.8] [-speedup-min-cpus 4]
//	           [-overhead row:reference]... [-max-overhead 0.05]
//
// -max-regress is the tolerated fractional slowdown (0.25 = fail beyond
// +25% ns/action). Improvements and matches within tolerance print as a
// table either way, so the CI log doubles as a perf trajectory record.
//
// Exit status:
//
//	0  every matching row within tolerance (and -self within bound, and
//	   every -speedup pair at or above -min-speedup or skipped)
//	1  a matching row regressed, or the -self ratio exceeded its bound
//	2  usage or artifact-loading error
//	3  zero rows match the baseline host shape — nothing was compared,
//	   so a green run proves nothing; CI distinguishes this from a pass
//	   instead of treating a foreign-host no-op as a guarantee
//	4  a -speedup pair fell short of -min-speedup on a host with enough
//	   CPUs — the parallel engine stopped scaling
//	5  an -overhead pair exceeded -max-overhead — enabling metrics is no
//	   longer effectively free on the hot path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Exit statuses; see the package comment.
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitNoMatch    = 3
	exitSpeedup    = 4
	exitOverhead   = 5
)

// row mirrors the fleet bench harness's artifact schema; unknown fields
// are ignored so the guard survives additive schema growth.
type row struct {
	Name        string  `json:"name"`
	Streams     int     `json:"streams"`
	Workers     int     `json:"workers"`
	BatchCycles int     `json:"batch_cycles"`
	Cycles      int     `json:"cycles"`
	NumCPU      int     `json:"num_cpu"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	NsPerAction float64 `json:"ns_per_action"`
}

// key is the row-matching identity: the workload configuration plus the
// host shape that produced the number.
type key struct {
	name                       string
	streams, workers, batch    int
	cycles, numCPU, gomaxprocs int
}

func (r row) key() key {
	return key{r.Name, r.Streams, r.Workers, r.BatchCycles, r.Cycles, r.NumCPU, r.Gomaxprocs}
}

func load(path string) ([]row, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(raw, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole guard behind an injectable (args, stdout, stderr) so
// the exit-status contract is unit-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "benchguard: "+format+"\n", a...)
		return exitUsage
	}
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	fresh := fs.String("fresh", "BENCH_fleet.json", "freshly produced bench artifact")
	maxRegress := fs.Float64("max-regress", 0.25, "tolerated fractional ns/action slowdown before failing")
	self := fs.String("self", "", "row:reference pair compared within the fresh artifact (host-independent tripwire)")
	maxSelfRatio := fs.Float64("max-self-ratio", 1.25, "tolerated ns/action ratio of the -self row over its reference")
	var speedups pairList
	fs.Var(&speedups, "speedup", "row:reference pair whose reference-over-row ns/action ratio must reach -min-speedup (repeatable; compared within the fresh artifact)")
	minSpeedup := fs.Float64("min-speedup", 1.8, "minimum reference÷row ns/action ratio every -speedup pair must reach")
	speedupMinCPUs := fs.Int("speedup-min-cpus", 4, "skip -speedup pairs when the fresh rows report fewer CPUs than this")
	var overheads pairList
	fs.Var(&overheads, "overhead", "row:reference pair whose row-over-reference ns/action excess must stay within -max-overhead (repeatable; compared within the fresh artifact)")
	maxOverhead := fs.Float64("max-overhead", 0.05, "tolerated fractional ns/action excess of every -overhead row over its reference")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return fail("unexpected arguments %q; benchguard is configured by flags only", fs.Args())
	}
	if *maxRegress < 0 || math.IsNaN(*maxRegress) || math.IsInf(*maxRegress, 0) {
		return fail("-max-regress must be a non-negative fraction, got %v", *maxRegress)
	}
	if *maxSelfRatio <= 0 || math.IsNaN(*maxSelfRatio) || math.IsInf(*maxSelfRatio, 0) {
		return fail("-max-self-ratio must be a positive ratio, got %v", *maxSelfRatio)
	}
	if *minSpeedup <= 0 || math.IsNaN(*minSpeedup) || math.IsInf(*minSpeedup, 0) {
		return fail("-min-speedup must be a positive ratio, got %v", *minSpeedup)
	}
	if *speedupMinCPUs < 1 {
		return fail("-speedup-min-cpus must be ≥ 1, got %d", *speedupMinCPUs)
	}
	if *maxOverhead < 0 || math.IsNaN(*maxOverhead) || math.IsInf(*maxOverhead, 0) {
		return fail("-max-overhead must be a non-negative fraction, got %v", *maxOverhead)
	}

	base, err := load(*baseline)
	if err != nil {
		return fail("%v", err)
	}
	cur, err := load(*fresh)
	if err != nil {
		return fail("%v", err)
	}
	byKey := map[key]row{}
	for _, r := range base {
		byKey[r.key()] = r
	}

	matched, regressed := 0, 0
	fmt.Fprintf(stdout, "%-34s %12s %12s %9s\n", "row", "baseline", "fresh", "delta")
	for _, r := range cur {
		b, ok := byKey[r.key()]
		if !ok {
			fmt.Fprintf(stdout, "%-34s %12s %12.2f %9s\n", r.Name, "—", r.NsPerAction, "skip")
			continue
		}
		if b.NsPerAction <= 0 {
			fmt.Fprintf(stdout, "%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, "skip")
			continue
		}
		matched++
		delta := r.NsPerAction/b.NsPerAction - 1
		verdict := fmt.Sprintf("%+.1f%%", 100*delta)
		if delta > *maxRegress {
			regressed++
			verdict += " FAIL"
		}
		fmt.Fprintf(stdout, "%-34s %12.2f %12.2f %9s\n", r.Name, b.NsPerAction, r.NsPerAction, verdict)
	}

	status := exitOK
	switch {
	case regressed > 0:
		fmt.Fprintf(stderr, "benchguard: %d of %d matching rows regressed beyond %+.0f%% ns/action\n",
			regressed, matched, 100**maxRegress)
		status = exitRegression
	case matched == 0:
		fmt.Fprintf(stderr, "benchguard: no rows match the baseline host shape (%s was produced on different hardware or a different workload set); nothing was compared\n",
			*baseline)
		status = exitNoMatch
	default:
		fmt.Fprintf(stdout, "%d matching rows within %+.0f%% of the baseline\n", matched, 100**maxRegress)
	}

	// The self-check runs even when host-shape matching found nothing —
	// that is exactly the situation it exists for. Its failures outrank
	// the no-match status.
	if *self != "" {
		rowName, refName, ok := strings.Cut(*self, ":")
		if !ok || rowName == "" || refName == "" {
			return fail("-self wants row:reference, got %q", *self)
		}
		r, ref := findRow(cur, rowName), findRow(cur, refName)
		if r == nil || ref == nil || ref.NsPerAction <= 0 {
			return fail("-self %s: the fresh artifact lacks the pair (have %q and %q?)", *self, rowName, refName)
		}
		ratio := r.NsPerAction / ref.NsPerAction
		fmt.Fprintf(stdout, "self-check: %s / %s = %.2f (bound %.2f)\n", rowName, refName, ratio, *maxSelfRatio)
		if ratio > *maxSelfRatio {
			fmt.Fprintf(stderr, "benchguard: %s is %.2fx %s, beyond the %.2fx bound\n", rowName, ratio, refName, *maxSelfRatio)
			return exitRegression
		}
	}

	// Speedup pairs also compare within the fresh artifact, so they run
	// whatever the host-shape matching found. A shortfall outranks the
	// no-match status but not a regression: a regressed row already
	// fails the run, and its message is the more specific one.
	shortfalls := 0
	for _, pair := range speedups {
		rowName, refName, ok := strings.Cut(pair, ":")
		if !ok || rowName == "" || refName == "" {
			return fail("-speedup wants row:reference, got %q", pair)
		}
		r, ref := findRow(cur, rowName), findRow(cur, refName)
		if r == nil || ref == nil || r.NsPerAction <= 0 {
			return fail("-speedup %s: the fresh artifact lacks the pair (have %q and %q?)", pair, rowName, refName)
		}
		if r.NumCPU < *speedupMinCPUs || ref.NumCPU < *speedupMinCPUs {
			fmt.Fprintf(stdout, "speedup: %s / %s skipped (host has %d CPUs, check needs %d)\n",
				refName, rowName, r.NumCPU, *speedupMinCPUs)
			continue
		}
		speedup := ref.NsPerAction / r.NsPerAction
		fmt.Fprintf(stdout, "speedup: %s / %s = %.2fx (floor %.2fx)\n", refName, rowName, speedup, *minSpeedup)
		if speedup < *minSpeedup {
			shortfalls++
			fmt.Fprintf(stderr, "benchguard: %s is only %.2fx faster than %s, below the %.2fx floor\n",
				rowName, speedup, refName, *minSpeedup)
		}
	}
	// Overhead pairs: the observability-enabled row must stay within
	// -max-overhead of its disabled reference. Within-artifact like
	// -self/-speedup, so it holds on any host. A breach outranks the
	// no-match status but yields to regressions and speedup shortfalls,
	// whose messages are the more specific ones.
	breaches := 0
	for _, pair := range overheads {
		rowName, refName, ok := strings.Cut(pair, ":")
		if !ok || rowName == "" || refName == "" {
			return fail("-overhead wants row:reference, got %q", pair)
		}
		r, ref := findRow(cur, rowName), findRow(cur, refName)
		if r == nil || ref == nil || ref.NsPerAction <= 0 {
			return fail("-overhead %s: the fresh artifact lacks the pair (have %q and %q?)", pair, rowName, refName)
		}
		excess := r.NsPerAction/ref.NsPerAction - 1
		fmt.Fprintf(stdout, "overhead: %s / %s = %+.1f%% (bound %+.1f%%)\n",
			rowName, refName, 100*excess, 100**maxOverhead)
		if excess > *maxOverhead {
			breaches++
			fmt.Fprintf(stderr, "benchguard: %s costs %+.1f%% ns/action over %s, beyond the %+.1f%% overhead bound\n",
				rowName, 100*excess, refName, 100**maxOverhead)
		}
	}
	if shortfalls > 0 && status != exitRegression {
		return exitSpeedup
	}
	if breaches > 0 && status != exitRegression {
		return exitOverhead
	}
	return status
}

// pairList is the repeatable row:reference flag value behind -speedup.
type pairList []string

func (p *pairList) String() string     { return strings.Join(*p, ",") }
func (p *pairList) Set(v string) error { *p = append(*p, v); return nil }

// findRow returns the first fresh row with the given name (the fresh
// artifact is one host and one run, so names are unique per batch).
func findRow(rows []row, name string) *row {
	for i := range rows {
		if rows[i].Name == name {
			return &rows[i]
		}
	}
	return nil
}
