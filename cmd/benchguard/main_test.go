package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeRows persists a bench artifact for the guard to load.
func writeRows(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const hostRow = `[{"name":"fleet","streams":64,"workers":4,"batch_cycles":8,"cycles":30,"num_cpu":8,"gomaxprocs":8,"ns_per_action":100}]`

// otherHostRow differs only in host shape, so it never matches hostRow.
const otherHostRow = `[{"name":"fleet","streams":64,"workers":4,"batch_cycles":8,"cycles":30,"num_cpu":32,"gomaxprocs":32,"ns_per_action":100}]`

func runGuard(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	status := run(args, &stdout, &stderr)
	return status, stdout.String(), stderr.String()
}

func TestMatchingRowWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", hostRow)
	fresh := writeRows(t, dir, "fresh.json", hostRow)
	status, out, _ := runGuard(t, "-baseline", base, "-fresh", fresh)
	if status != exitOK {
		t.Fatalf("status = %d, want %d", status, exitOK)
	}
	if !strings.Contains(out, "1 matching rows within") {
		t.Fatalf("missing pass summary in output:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", hostRow)
	fresh := writeRows(t, dir, "fresh.json", strings.ReplaceAll(hostRow, `"ns_per_action":100`, `"ns_per_action":200`))
	status, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if status != exitRegression {
		t.Fatalf("status = %d, want %d", status, exitRegression)
	}
	if !strings.Contains(errOut, "regressed beyond") {
		t.Fatalf("missing regression message on stderr:\n%s", errOut)
	}
}

// TestZeroMatchingRowsIsDistinctStatus is the contract CI leans on: a
// baseline from foreign hardware must not read as a silent pass.
func TestZeroMatchingRowsIsDistinctStatus(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", hostRow)
	status, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if status != exitNoMatch {
		t.Fatalf("status = %d, want %d", status, exitNoMatch)
	}
	if !strings.Contains(errOut, "no rows match the baseline host shape") {
		t.Fatalf("missing no-match explanation on stderr:\n%s", errOut)
	}
}

// TestSelfCheckRunsDespiteZeroMatches: the within-artifact ratio is the
// host-independent tripwire, so it must still gate a no-match run.
func TestSelfCheckRunsDespiteZeroMatches(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json",
		`[{"name":"open","num_cpu":8,"gomaxprocs":8,"ns_per_action":300},
		  {"name":"spec","num_cpu":8,"gomaxprocs":8,"ns_per_action":100}]`)

	status, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-self", "open:spec", "-max-self-ratio", "4")
	if status != exitNoMatch {
		t.Fatalf("passing self-check: status = %d, want %d", status, exitNoMatch)
	}

	status, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-self", "open:spec", "-max-self-ratio", "2")
	if status != exitRegression {
		t.Fatalf("failing self-check: status = %d, want %d", status, exitRegression)
	}
	if !strings.Contains(errOut, "beyond the") {
		t.Fatalf("missing self-check failure on stderr:\n%s", errOut)
	}
}

// speedupRows is a fresh artifact from an 8-CPU host: workers=4 runs
// 3x faster than workers=1.
const speedupRows = `[{"name":"open-large-workers=1","num_cpu":8,"gomaxprocs":8,"ns_per_action":300},
  {"name":"open-large-workers=4","num_cpu":8,"gomaxprocs":8,"ns_per_action":100}]`

// singleCPURows is the same pair measured on a 1-CPU host (the build
// container): no parallelism is possible, so the check must skip.
const singleCPURows = `[{"name":"open-large-workers=1","num_cpu":1,"gomaxprocs":1,"ns_per_action":100},
  {"name":"open-large-workers=4","num_cpu":1,"gomaxprocs":1,"ns_per_action":103}]`

func TestSpeedupAtOrAboveFloorPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", speedupRows)
	status, out, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-speedup", "open-large-workers=4:open-large-workers=1", "-min-speedup", "1.8")
	if status != exitNoMatch { // no host-shape match, but the speedup pair held
		t.Fatalf("status = %d, want %d", status, exitNoMatch)
	}
	if !strings.Contains(out, "= 3.00x") {
		t.Fatalf("missing speedup line in output:\n%s", out)
	}
}

// TestSpeedupShortfallIsDistinctStatus is the scaling tripwire: a
// parallel shape that stopped beating the serial one must fail with
// its own exit status, distinguishable from a row regression.
func TestSpeedupShortfallIsDistinctStatus(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", speedupRows)
	status, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-speedup", "open-large-workers=4:open-large-workers=1", "-min-speedup", "3.5")
	if status != exitSpeedup {
		t.Fatalf("status = %d, want %d", status, exitSpeedup)
	}
	if !strings.Contains(errOut, "below the") {
		t.Fatalf("missing shortfall message on stderr:\n%s", errOut)
	}
}

// TestSpeedupSkipsOnSmallHosts: the 1-CPU build container cannot show
// parallel speedup, so the pair is reported as skipped, not failed.
func TestSpeedupSkipsOnSmallHosts(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", singleCPURows)
	status, out, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-speedup", "open-large-workers=4:open-large-workers=1", "-speedup-min-cpus", "4")
	if status != exitNoMatch {
		t.Fatalf("status = %d, want %d", status, exitNoMatch)
	}
	if !strings.Contains(out, "skipped (host has 1 CPUs") {
		t.Fatalf("missing skip note in output:\n%s", out)
	}
}

// TestSpeedupMissingRowIsUsageStatus: asking for a pair the artifact
// does not carry is a configuration error, not a quiet pass.
func TestSpeedupMissingRowIsUsageStatus(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", speedupRows)
	status, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-speedup", "open-large-workers=16:open-large-workers=1")
	if status != exitUsage {
		t.Fatalf("status = %d, want %d", status, exitUsage)
	}
	status, _, _ = runGuard(t, "-baseline", base, "-fresh", fresh, "-speedup", "nocolon")
	if status != exitUsage {
		t.Fatalf("malformed pair: status = %d, want %d", status, exitUsage)
	}
}

// TestRegressionOutranksSpeedupShortfall: when both fire, the more
// specific row-regression status wins.
func TestRegressionOutranksSpeedupShortfall(t *testing.T) {
	dir := t.TempDir()
	fresh := writeRows(t, dir, "fresh.json",
		`[{"name":"open-large-workers=1","streams":64,"workers":1,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":300},
		  {"name":"open-large-workers=4","streams":64,"workers":4,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":290}]`)
	base := writeRows(t, dir, "base.json",
		`[{"name":"open-large-workers=1","streams":64,"workers":1,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":100}]`)
	status, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-speedup", "open-large-workers=4:open-large-workers=1")
	if status != exitRegression {
		t.Fatalf("status = %d, want %d", status, exitRegression)
	}
}

// overheadRows is a fresh artifact carrying a benchmark in both its
// metrics-enabled and disabled shapes: obs costs +3% ns/action.
const overheadRows = `[{"name":"open-poisson-cap4-workers=1","num_cpu":8,"gomaxprocs":8,"ns_per_action":100},
  {"name":"open-poisson-cap4-obs-workers=1","num_cpu":8,"gomaxprocs":8,"ns_per_action":103}]`

func TestOverheadWithinBoundPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", overheadRows)
	status, out, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-overhead", "open-poisson-cap4-obs-workers=1:open-poisson-cap4-workers=1", "-max-overhead", "0.05")
	if status != exitNoMatch { // no host-shape match, but the overhead pair held
		t.Fatalf("status = %d, want %d", status, exitNoMatch)
	}
	if !strings.Contains(out, "overhead: open-poisson-cap4-obs-workers=1 / open-poisson-cap4-workers=1 = +3.0%") {
		t.Fatalf("missing overhead line in output:\n%s", out)
	}
}

// TestOverheadBreachIsDistinctStatus is the observability cost
// tripwire: metrics that stop being effectively free must fail with
// their own exit status, distinguishable from a row regression.
func TestOverheadBreachIsDistinctStatus(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", overheadRows)
	status, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-overhead", "open-poisson-cap4-obs-workers=1:open-poisson-cap4-workers=1", "-max-overhead", "0.02")
	if status != exitOverhead {
		t.Fatalf("status = %d, want %d", status, exitOverhead)
	}
	if !strings.Contains(errOut, "beyond the +2.0% overhead bound") {
		t.Fatalf("missing breach message on stderr:\n%s", errOut)
	}
}

// TestOverheadMissingRowIsUsageStatus: a pair the artifact lacks is a
// configuration error, not a quiet pass.
func TestOverheadMissingRowIsUsageStatus(t *testing.T) {
	dir := t.TempDir()
	base := writeRows(t, dir, "base.json", otherHostRow)
	fresh := writeRows(t, dir, "fresh.json", overheadRows)
	status, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh,
		"-overhead", "no-such-row:open-poisson-cap4-workers=1")
	if status != exitUsage {
		t.Fatalf("status = %d, want %d", status, exitUsage)
	}
	status, _, _ = runGuard(t, "-baseline", base, "-fresh", fresh, "-overhead", "nocolon")
	if status != exitUsage {
		t.Fatalf("malformed pair: status = %d, want %d", status, exitUsage)
	}
}

// TestRegressionOutranksOverheadBreach: when both fire, the more
// specific row-regression status wins.
func TestRegressionOutranksOverheadBreach(t *testing.T) {
	dir := t.TempDir()
	fresh := writeRows(t, dir, "fresh.json",
		`[{"name":"open","streams":64,"workers":1,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":300},
		  {"name":"open-obs","streams":64,"workers":1,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":400}]`)
	base := writeRows(t, dir, "base.json",
		`[{"name":"open","streams":64,"workers":1,"batch_cycles":32,"cycles":4,"num_cpu":8,"gomaxprocs":8,"ns_per_action":100}]`)
	status, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh, "-overhead", "open-obs:open")
	if status != exitRegression {
		t.Fatalf("status = %d, want %d", status, exitRegression)
	}
}

func TestLoadErrorIsUsageStatus(t *testing.T) {
	dir := t.TempDir()
	fresh := writeRows(t, dir, "fresh.json", hostRow)
	status, _, _ := runGuard(t, "-baseline", filepath.Join(dir, "missing.json"), "-fresh", fresh)
	if status != exitUsage {
		t.Fatalf("status = %d, want %d", status, exitUsage)
	}
	broken := writeRows(t, dir, "broken.json", "{not json")
	status, _, _ = runGuard(t, "-baseline", broken, "-fresh", fresh)
	if status != exitUsage {
		t.Fatalf("broken baseline: status = %d, want %d", status, exitUsage)
	}
}
