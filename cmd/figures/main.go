// Command figures regenerates every table and figure of the paper's
// evaluation (§4) from the reproduction's synthetic-iPod experiment and
// writes them to stdout (ASCII) and an output directory (CSV + SVG).
//
// Artefacts (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	table-overhead   §4.2 overhead comparison (5.7 / 1.9 / <1.1 %)
//	table-memory     §4.1 table sizes (8,323 and 99,876 integers)
//	fig3             speed-diagram trajectory of a controlled frame
//	fig4             quality region borders tD(s_i, q)
//	fig6             control relaxation region borders
//	fig7             average quality level per frame, 3 managers
//	fig8             per-action management overhead, actions 200–700
//
// With -fleet, a fleet section is appended from a persisted qmfleet run
// (`qmfleet -json fleet.json`): the cross-stream aggregate — and, for
// open-system runs, the admission/backlog/sojourn summary — plus a
// fleet-quality histogram artefact.
//
// Usage:
//
//	figures [-out results] [-seed 1] [-frames 29] [-fleet fleet.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/plot"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	out := flag.String("out", "results", "output directory for CSV/SVG artefacts")
	seed := flag.Uint64("seed", 1, "content seed for the execution model")
	frames := flag.Int("frames", 0, "override frame count (default: the paper's 29)")
	fleetPath := flag.String("fleet", "", "render a fleet section from this persisted qmfleet run (qmfleet -json output)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	s := experiment.Paper(*seed)
	if *frames > 0 {
		s.Cycles = *frames
	}
	traces := report.Traces(s)

	fmt.Println(report.OverheadTable(traces))
	fmt.Println(report.MemoryTable(s))

	emit(report.Fig7(traces), *out, "fig7")
	fig8, bands := report.Fig8(s)
	emit(fig8, *out, "fig8")
	fmt.Println(report.BandsText(bands))
	fig3, err := report.Fig3(s, 4)
	if err != nil {
		log.Fatal(err)
	}
	emit(fig3, *out, "fig3")
	emit(report.Fig4(s), *out, "fig4")
	emit(report.Fig6(s, 4), *out, "fig6")
	if *fleetPath != "" {
		f, err := os.Open(*fleetPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := metrics.ReadFleetDoc(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(report.FleetDocText(doc))
		emit(report.FleetQualityChart(doc), *out, "fleet-quality")
	}
	fmt.Printf("artefacts written to %s/\n", *out)
}

func emit(chart *plot.Chart, out, name string) {
	fmt.Println(chart.ASCII(72, 18))
	if err := os.WriteFile(filepath.Join(out, name+".csv"), []byte(chart.CSV()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, name+".svg"), []byte(chart.SVG(640, 420)), 0o644); err != nil {
		log.Fatal(err)
	}
}
