// Command qmsim runs the controlled encoder workload on the simulated
// platform under a chosen Quality Manager and prints the run's metrics
// (and optionally the full trace).
//
// Usage:
//
//	qmsim [-manager numeric|symbolic|relaxed|safe|fixed:N|pid|skip]
//	      [-frames 29] [-seed 1] [-trace] [-bands]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmsim: ")
	manager := flag.String("manager", "relaxed", "quality manager: numeric, symbolic, relaxed, safe, fixed:N, pid, skip")
	frames := flag.Int("frames", 29, "number of frames (cycles)")
	seed := flag.Uint64("seed", 1, "content seed")
	showTrace := flag.Bool("trace", false, "dump the per-action trace")
	showBands := flag.Bool("bands", false, "dump relaxation bands of frame 0")
	csvPath := flag.String("csv", "", "write the full trace as CSV to this file")
	flag.Parse()

	s := experiment.Paper(*seed)
	s.Cycles = *frames
	m, err := pick(s, *manager)
	if err != nil {
		log.Fatal(err)
	}
	tr := s.Run(m)
	sum := metrics.Summarize(tr)

	fmt.Printf("manager           %s\n", sum.Manager)
	fmt.Printf("frames            %d (period %v)\n", sum.Cycles, tr.Period)
	fmt.Printf("final clock       %v\n", sum.Final)
	fmt.Printf("deadline misses   %d\n", sum.Misses)
	fmt.Printf("avg quality       %.3f (min %v, max %v)\n", sum.AvgQuality, sum.MinQuality, sum.MaxQuality)
	fmt.Printf("decisions         %d (mean relaxation %.2f steps)\n", sum.Decisions, sum.MeanRelaxSteps)
	fmt.Printf("overhead          %v (%.2f%% of busy time)\n", sum.TotalOverhead, 100*sum.OverheadFraction)
	fmt.Printf("exec / idle       %v / %v\n", sum.TotalExec, sum.TotalIdle)
	fmt.Printf("utilization       %.3f\n", metrics.Utilization(tr))
	fmt.Printf("smoothness        mean |Δq| %.4f, %d switches\n", sum.Smooth.MeanAbsDelta, sum.Smooth.Switches)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := metrics.WriteTraceCSV(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace CSV       %s (%d rows)\n", *csvPath, len(tr.Records))
	}
	if *showBands {
		fmt.Println("\nrelaxation bands (frame 0):")
		for _, b := range metrics.Bands(tr, 0) {
			fmt.Printf("  r = %-3d a%d..a%d\n", b.Steps, b.From, b.To)
		}
	}
	if *showTrace {
		fmt.Println("\ncycle action class      q   start            exec       overhead")
		for _, r := range tr.Records {
			mark := " "
			if r.Decision {
				mark = "*"
			}
			if r.Missed {
				mark = "!"
			}
			fmt.Printf("%5d %6d %s %v  %-15v %-10v %v\n",
				r.Cycle, r.Index, mark, r.Q, r.Start, r.Exec, r.Overhead)
		}
	}
}

func pick(s *experiment.Setup, name string) (core.Manager, error) {
	switch {
	case name == "numeric":
		return s.Numeric(), nil
	case name == "symbolic":
		return s.Symbolic(), nil
	case name == "relaxed":
		return s.Relaxed(), nil
	case name == "safe":
		return core.NewSafeManager(s.Sys), nil
	case name == "pid":
		return baseline.NewPIDManager(s.Sys, 4, 0.5, 0.05, 0.1), nil
	case name == "skip":
		return baseline.NewSkipManager(s.Sys, s.Sys.QMax()), nil
	case strings.HasPrefix(name, "fixed:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "fixed:"))
		if err != nil {
			return nil, fmt.Errorf("bad fixed level %q: %v", name, err)
		}
		return core.FixedManager{Level: core.Level(n).Clamp(s.Sys.NumLevels())}, nil
	default:
		return nil, fmt.Errorf("unknown manager %q", name)
	}
}
