// Command qmprofile profiles the real Go encoder on the host machine —
// the paper's "estimated worst-case and average execution times by
// profiling" step — and emits the per-class timing tables as JSON,
// suitable for building a parameterized system for live control
// (see examples/liveencoder).
//
// Usage:
//
//	qmprofile [-frames 4] [-margin 1.3] [-levels 7] [-w 352 -h 288]
//	          [-seed 1] [-synthetic] [-o tables.json]
//
// With -synthetic the host clock is replaced by a deterministic timing
// model seeded from -seed, so the emitted tables are reproducible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/encoder"
	"repro/internal/frame"
	"repro/internal/profiler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qmprofile: ")
	frames := flag.Int("frames", 4, "frames to profile per quality level (≥2)")
	margin := flag.Float64("margin", 1.3, "worst-case safety margin over the observed maximum")
	levels := flag.Int("levels", 7, "quality levels")
	width := flag.Int("w", frame.CIFWidth, "frame width (multiple of 16)")
	height := flag.Int("h", frame.CIFHeight, "frame height (multiple of 16)")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 1, "video source seed; with -synthetic, also the timing seed")
	synthetic := flag.Bool("synthetic", false, "use the seeded deterministic timing model instead of the host clock (reproducible tables)")
	flag.Parse()

	src := &frame.Source{W: *width, H: *height, Seed: *seed}
	enc, err := encoder.New(src, *levels)
	if err != nil {
		log.Fatal(err)
	}
	measure := profiler.WallClock()
	mode := "host clock"
	if *synthetic {
		measure = profiler.Deterministic(*seed)
		mode = fmt.Sprintf("synthetic (seed %d)", *seed)
	}
	fmt.Fprintf(os.Stderr, "profiling %d×%d, %d levels, %d frames per level, %s...\n",
		*width, *height, *levels, *frames, mode)
	tabs, err := profiler.ProfileWith(enc, *frames, *margin, measure)
	if err != nil {
		log.Fatal(err)
	}
	data, err := json.MarshalIndent(tabs, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
