// Powermgmt demonstrates the paper's concluding extension: the Quality
// Manager drives CPU *frequency* instead of quality, minimising energy
// without missing deadlines. Level q selects the q-th slowest frequency,
// so the policy's "maximal q meeting the constraint" is exactly "lowest
// safe frequency".
//
// Run with: go run ./examples/powermgmt
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/regions"
	"repro/internal/sim"
)

func main() {
	// A periodic signal-processing task: 80 stages at fmax, worst case
	// 1.4× average, deadline with 2.2× slack over the fmax average.
	//
	// The manager plans on a second copy of the workload whose times are
	// padded by the worst-case management cost per action — the paper's
	// remedy for control overhead ("overestimate average and worst-case
	// execution times"), without which worst-case execution plus
	// overhead would overrun the margin.
	const n = 80
	const avPad, wcPad = 3 * core.Microsecond, 6 * core.Microsecond
	workTrue := make([]power.Workload, n)
	workPlan := make([]power.Workload, n)
	var avTotal core.Time
	for i := range workTrue {
		av := core.Time(150+50*(i%4)) * core.Microsecond
		workTrue[i] = power.Workload{
			Name: fmt.Sprintf("stage-%d", i),
			Av:   av, WC: av * 7 / 5,
			Deadline: core.TimeInf,
		}
		workPlan[i] = power.Workload{
			Name: workTrue[i].Name,
			Av:   av + avPad, WC: av*7/5 + wcPad,
			Deadline: core.TimeInf,
		}
		avTotal += av
	}
	deadline := avTotal * 11 / 5
	workTrue[n-1].Deadline = deadline
	workPlan[n-1].Deadline = deadline

	freqs := []float64{1.0, 0.85, 0.7, 0.6, 0.5, 0.4}
	sysTrue, fs, err := power.System(workTrue, freqs)
	if err != nil {
		panic(err)
	}
	sys, _, err := power.System(workPlan, freqs)
	if err != nil {
		panic(err)
	}
	tab := regions.BuildTDTable(sys)
	mgr := regions.NewRelaxedManager(regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 20}))

	run := func(m core.Manager, exec sim.ExecModel) *sim.Trace {
		return (&sim.Runner{Sys: sys, Mgr: m, Exec: exec,
			Overhead: sim.OverheadModel{CallBase: 2 * core.Microsecond, PerUnit: 10},
			Cycles:   25}).MustRun()
	}

	fmt.Printf("%-22s %8s %12s %14s\n", "policy", "misses", "energy", "vs always-fmax")
	exec := sim.Content{Sys: sysTrue, NoiseAmp: 0.25, Seed: 11}
	fmaxTr := run(core.FixedManager{Level: 0}, exec)
	fmt.Printf("%-22s %8d %12.0f %14s\n", "always fmax", fmaxTr.Misses, power.Energy(fmaxTr, fs), "—")
	ctrl := run(mgr, exec)
	fmt.Printf("%-22s %8d %12.0f %13.1f%%\n", "managed (relaxed QM)",
		ctrl.Misses, power.Energy(ctrl, fs), 100*power.Savings(ctrl, fmaxTr, fs))

	// Worst-case stress: the controller must stay safe.
	stress := run(mgr, sim.WorstCase{Sys: sysTrue})
	fmt.Printf("%-22s %8d %12.0f %13.1f%%\n", "managed, worst case",
		stress.Misses, power.Energy(stress, fs), 100*power.Savings(stress, fmaxTr, fs))

	fmt.Println("\nfrequency residency (managed, typical load):")
	counts := make([]int, len(fs))
	for _, r := range ctrl.Records {
		counts[r.Q]++
	}
	for q, c := range counts {
		fmt.Printf("  f = %.2f: %5.1f%%\n", fs[q], 100*float64(c)/float64(len(ctrl.Records)))
	}
}
