// Quickstart: build a small parameterized system by hand, attach the
// three Quality Managers of the paper, and watch them steer quality so
// that the deadline is always met while the time budget is used.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/regions"
	"repro/internal/sim"
)

func main() {
	// 1. Describe the application: 50 actions, 5 quality levels.
	//    Execution times grow with quality; worst case is 1.5× average.
	const n, levels = 50, 5
	tt := core.NewTimingTable(n, levels)
	for i := 0; i < n; i++ {
		for q := 0; q < levels; q++ {
			av := core.Time(100+40*q) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}

	// 2. Give the last action a deadline: the cycle must finish within
	//    10 ms. (At the top level the average workload alone is 13 ms,
	//    so quality must be managed.)
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Name: fmt.Sprintf("step-%d", i), Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = 10 * core.Millisecond

	sys, err := core.NewSystem(actions, tt)
	if err != nil {
		panic(err)
	}
	if err := sys.Feasible(); err != nil {
		panic(err) // qmin worst case must fit the deadline
	}

	// 3. Pre-compute the symbolic tables (Propositions 2 and 3).
	tab := regions.BuildTDTable(sys)
	relax := regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 20})

	// 4. Run 20 cycles under each manager on the simulated platform.
	managers := []core.Manager{
		core.NewNumericManager(sys),
		regions.NewSymbolicManager(tab),
		regions.NewRelaxedManager(relax),
	}
	fmt.Printf("%-10s %8s %10s %10s %9s\n", "manager", "misses", "avg qual", "decisions", "overhead")
	for _, m := range managers {
		tr := (&sim.Runner{
			Sys:      sys,
			Mgr:      m,
			Exec:     sim.Content{Sys: sys, NoiseAmp: 0.3, Seed: 42},
			Overhead: sim.OverheadModel{CallBase: 5 * core.Microsecond, PerUnit: 20 * core.Nanosecond},
			Cycles:   20,
		}).MustRun()
		s := metrics.Summarize(tr)
		fmt.Printf("%-10s %8d %10.2f %10d %8.2f%%\n",
			s.Manager, s.Misses, s.AvgQuality, s.Decisions, 100*s.OverheadFraction)
	}
	fmt.Println("\nAll managers meet every deadline; the symbolic ones pay less for it.")
}
