// Liveencoder runs the real Go MPEG-like encoder under a real Quality
// Manager against the host's monotonic clock — the end-to-end loop of the
// paper with the host standing in for the iPod:
//
//  1. profile the encoder to estimate Cav/Cwc per action class,
//  2. build the parameterized system with a per-frame deadline,
//  3. pre-compute the symbolic tables,
//  4. encode frames with the relaxed Quality Manager picking each
//     action's quality from the live clock.
//
// Run with: go run ./examples/liveencoder [-frames 8] [-budget-ms 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/frame"
	"repro/internal/profiler"
	"repro/internal/regions"
)

func main() {
	frames := flag.Int("frames", 8, "frames to encode under management")
	budgetMS := flag.Int("budget-ms", 0, "frame budget in ms (0 = derive from profile)")
	flag.Parse()

	// Small frames keep the demo quick; the structure is the same as CIF.
	src := &frame.Source{W: 128, H: 96, Seed: 7}
	const levels = 7

	fmt.Println("profiling the encoder on this machine...")
	prof, err := profiler.Profile(encoder.MustNew(src, levels), 3, 1.4)
	if err != nil {
		panic(err)
	}

	// Frame budget: comfortably between the qmin worst case and the
	// qmax average, so management has real work to do.
	enc := encoder.MustNew(src, levels)
	numMB := enc.NumMB()
	budget := core.Time(*budgetMS) * core.Millisecond
	if budget == 0 {
		var wmin, avmax core.Time
		for i := 0; i < enc.NumActions(); i++ {
			ct := prof.Classes[encoder.ActionClass(i)]
			wmin += ct.WC[0]
			avmax += ct.Av[levels-1]
		}
		budget = (wmin*2 + avmax) / 2
	}
	sys, err := prof.System(numMB, budget)
	if err != nil {
		panic(err)
	}
	fmt.Printf("system: %d actions, %d levels, frame budget %v\n",
		sys.NumActions(), sys.NumLevels(), budget)

	tab := regions.BuildTDTable(sys)
	mgr := regions.NewRelaxedManager(regions.MustBuildRelaxTables(tab, []int{1, 5, 10, 25, 50}))

	fmt.Printf("\n%-6s %-10s %-9s %-8s %-10s %s\n", "frame", "wall", "avg q", "misses", "decisions", "PSNR (dB)")
	totalMisses := 0
	for f := 0; f < *frames; f++ {
		frameStart := time.Now()
		var qsum, decisions int
		pending, cur := 0, core.Level(0)
		for i := 0; i < enc.NumActions(); i++ {
			if pending == 0 {
				elapsed := core.FromDuration(time.Since(frameStart))
				d := mgr.Decide(i, elapsed)
				cur, pending = d.Q, d.Steps
				decisions++
			}
			enc.Exec(i, cur)
			qsum += int(cur)
			pending--
		}
		wall := time.Since(frameStart)
		missed := 0
		if core.FromDuration(wall) > budget {
			missed = 1
			totalMisses++
		}
		st := enc.Stats()
		fmt.Printf("%-6d %-10v %-9.2f %-8d %-10d %.2f\n",
			f, wall.Round(time.Millisecond), float64(qsum)/float64(enc.NumActions()),
			missed, decisions, st.PSNR[len(st.PSNR)-1])
	}
	st := enc.Stats()
	fmt.Printf("\nencoded %d frames, %d bytes, %d deadline misses\n",
		st.Frames, st.Bytes, totalMisses)
	fmt.Println("note: host timing noise is absorbed by the profiled worst-case margin;")
	fmt.Println("occasional misses indicate the margin was set too tight for this machine.")
}
