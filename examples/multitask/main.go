// Multitask demonstrates the paper's "adaption to multiple tasks"
// extension: two video streams share one CPU under EDF. With timing
// tables inflated by each task's CPU share, the per-task Quality Managers
// keep every deadline by degrading quality; without inflation the same
// workload overloads and misses.
//
// Run with: go run ./examples/multitask
package main

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/multitask"
	"repro/internal/regions"
	"repro/internal/sim"
)

// stream builds a small video-like cyclic system: n actions whose average
// times grow with quality, worst case 1.5×, final deadline = budget.
func stream(n int, baseMicros int64, budget core.Time, levels int) *core.System {
	tt := core.NewTimingTable(n, levels)
	for i := 0; i < n; i++ {
		for q := 0; q < levels; q++ {
			av := core.Time(baseMicros+int64(q)*baseMicros/2) * core.Microsecond
			tt.Set(i, core.Level(q), av, av*3/2)
		}
	}
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = budget
	return core.MustNewSystem(actions, tt)
}

func main() {
	const n, levels = 60, 5
	budget := core.Time(n) * 450 * core.Microsecond
	base := stream(n, 100, budget, levels)

	// Managed run: each task plans with 2×-inflated tables (half CPU).
	inflated := multitask.InflateTiming(base.Timing(), 2, 1)
	actions := make([]core.Action, n)
	for i := range actions {
		actions[i] = core.Action{Deadline: core.TimeInf}
	}
	actions[n-1].Deadline = budget
	mkManaged := func(name string, seed uint64) *multitask.Task {
		sys := core.MustNewSystem(actions, inflated)
		tab := regions.BuildTDTable(sys)
		mgr := regions.NewSymbolicManager(tab)
		return &multitask.Task{
			Name: name, Sys: sys, Mgr: mgr,
			Exec:   sim.Content{Sys: base, NoiseAmp: 0.3, Seed: seed},
			Cycles: 10,
		}
	}
	managed, err := multitask.Run([]*multitask.Task{mkManaged("cam-A", 1), mkManaged("cam-B", 2)})
	if err != nil {
		panic(err)
	}

	// Naive run: both tasks assume a dedicated CPU and fix a high level.
	mkNaive := func(name string, seed uint64) *multitask.Task {
		return &multitask.Task{
			Name: name, Sys: base, Mgr: core.FixedManager{Level: 3},
			Exec:   sim.Content{Sys: base, NoiseAmp: 0.3, Seed: seed},
			Cycles: 10,
		}
	}
	naive, err := multitask.Run([]*multitask.Task{mkNaive("cam-A", 1), mkNaive("cam-B", 2)})
	if err != nil {
		panic(err)
	}

	report := func(title string, res *multitask.Result) {
		fmt.Printf("%s (total misses: %d)\n", title, res.TotalMisses())
		names := make([]string, 0, len(res.Traces))
		for name := range res.Traces {
			names = append(names, name)
		}
		slices.Sort(names)
		for _, name := range names {
			tr := res.Traces[name]
			var qsum float64
			for _, r := range tr.Records {
				qsum += float64(r.Q)
			}
			fmt.Printf("  %-6s misses=%-3d avg quality=%.2f decisions=%d\n",
				name, tr.Misses, qsum/float64(len(tr.Records)), tr.Decisions)
		}
		fmt.Println()
	}
	report("managed: per-task QMs on 2x-inflated tables", managed)
	report("naive: fixed high quality, dedicated-CPU assumption", naive)
	fmt.Println("inflation trades quality for safety; the naive setup overloads instead.")
}
